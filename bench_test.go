package failstop

import (
	"context"
	"strconv"
	"testing"

	"repro/internal/adversary"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/pram"
	"repro/internal/prog"
	"repro/internal/writeall"
)

// The benchmarks below regenerate the paper's evaluation: one benchmark
// per experiment table (indexed in DESIGN.md), each running that
// experiment's representative configuration once per iteration and
// reporting the completed work S (the paper's primary measure) as
// work-S/op. `go run ./cmd/experiments` prints the corresponding full
// tables.

// benchWriteAll runs one Write-All configuration per iteration on a
// pooled Runner. The algorithm is instantiated once and reused — Setup
// reinitializes its Done state every run, and reusing the instance lets
// the runner recycle Resettable processor state (for ACC this means
// iterations see successive random streams rather than a replay, which is
// if anything more representative).
func benchWriteAll(b *testing.B, n, p int, mkAlg func() pram.Algorithm, mkAdv func() pram.Adversary, cfg Config) {
	b.Helper()
	var runner pram.Runner
	defer runner.Close()
	alg := mkAlg()
	var lastS int64
	for i := 0; i < b.N; i++ {
		cfg.N, cfg.P = n, p
		got, err := runner.Run(cfg, alg, mkAdv())
		if err != nil {
			b.Fatal(err)
		}
		lastS = got.S()
	}
	b.ReportMetric(float64(lastS), "work-S/op")
}

// benchSim runs one robust execution per iteration.
func benchSim(b *testing.B, program core.Program, p int, mkAdv func() pram.Adversary, engine core.Engine) {
	b.Helper()
	var lastS int64
	for i := 0; i < b.N; i++ {
		m, err := core.NewMachineWithEngine(program, p, mkAdv(), pram.Config{}, engine)
		if err != nil {
			b.Fatal(err)
		}
		got, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		lastS = got.S()
	}
	b.ReportMetric(float64(lastS), "work-S/op")
}

// BenchmarkE1Thrashing: Example 2.2, S vs S' under the thrashing
// adversary.
func BenchmarkE1Thrashing(b *testing.B) {
	benchWriteAll(b, 128, 128,
		func() pram.Algorithm { return writeall.NewTrivial() },
		func() pram.Adversary { return adversary.Thrashing{} },
		Config{})
}

// BenchmarkE2LowerBound: Theorem 3.1, the halving adversary against X.
func BenchmarkE2LowerBound(b *testing.B) {
	benchWriteAll(b, 256, 256,
		func() pram.Algorithm { return writeall.NewX() },
		func() pram.Adversary { return adversary.NewHalving() },
		Config{})
}

// BenchmarkE3Oblivious: Theorem 3.2, the snapshot algorithm under
// halving.
func BenchmarkE3Oblivious(b *testing.B) {
	benchWriteAll(b, 256, 256,
		func() pram.Algorithm { return writeall.NewOblivious() },
		func() pram.Adversary { return adversary.NewHalving() },
		Config{AllowSnapshot: true})
}

// BenchmarkE4VFailStop: Lemma 4.2, V under fail-stop failures.
func BenchmarkE4VFailStop(b *testing.B) {
	benchWriteAll(b, 256, 256,
		func() pram.Algorithm { return writeall.NewV() },
		func() pram.Adversary {
			a := adversary.NewRandom(0.02, 0, 5)
			a.MaxEvents = 128
			return a
		},
		Config{})
}

// BenchmarkE5VRestart: Theorem 4.3, V under failures and restarts.
func BenchmarkE5VRestart(b *testing.B) {
	benchWriteAll(b, 256, 16,
		func() pram.Algorithm { return writeall.NewV() },
		func() pram.Adversary {
			a := adversary.NewRandom(0.4, 0.9, 17)
			a.MaxEvents = 512
			return a
		},
		Config{})
}

// BenchmarkE6XWorstCase: Theorem 4.8, X under the post-order adversary.
func BenchmarkE6XWorstCase(b *testing.B) {
	benchWriteAll(b, 128, 128,
		func() pram.Algorithm { return writeall.NewX() },
		func() pram.Adversary { return writeall.NewPostOrder(writeall.NewX().Layout(128, 128)) },
		Config{})
}

// BenchmarkE7XProcessorSweep: Theorem 4.7, X at P = N/4 under post-order.
func BenchmarkE7XProcessorSweep(b *testing.B) {
	benchWriteAll(b, 256, 64,
		func() pram.Algorithm { return writeall.NewX() },
		func() pram.Adversary { return writeall.NewPostOrder(writeall.NewX().Layout(256, 64)) },
		Config{})
}

// BenchmarkE8Combined: Theorem 4.9, the combined V+X algorithm under the
// rotating thrasher that starves V alone.
func BenchmarkE8Combined(b *testing.B) {
	benchWriteAll(b, 128, 128,
		func() pram.Algorithm { return writeall.NewCombined() },
		func() pram.Adversary { return adversary.Thrashing{Rotate: true} },
		Config{})
}

// BenchmarkE9Simulation: Theorem 4.1 / Cor 4.10, robust prefix sums.
func BenchmarkE9Simulation(b *testing.B) {
	benchSim(b, prog.PrefixSum{N: 128}, 128,
		func() pram.Adversary {
			a := adversary.NewRandom(0.05, 0.5, 31)
			a.MaxEvents = 128
			return a
		},
		core.EngineVX)
}

// BenchmarkE10OverheadRatio: Cor 4.11, heavy failure pattern.
func BenchmarkE10OverheadRatio(b *testing.B) {
	benchSim(b, prog.ReduceSum{N: 128}, 128,
		func() pram.Adversary {
			a := adversary.NewRandom(0.45, 0.9, 37)
			a.MaxEvents = 4096
			return a
		},
		core.EngineVX)
}

// BenchmarkE11Optimality: Cor 4.12, the work-optimal range, both engines.
func BenchmarkE11Optimality(b *testing.B) {
	for _, engine := range []core.Engine{core.EngineVX, core.EngineX} {
		b.Run(engine.String(), func(b *testing.B) {
			benchSim(b, prog.PrefixSum{N: 512}, 8,
				func() pram.Adversary { return adversary.None{} },
				engine)
		})
	}
}

// BenchmarkE12Stalking: Section 5, ACC under the fail-stop stalker.
func BenchmarkE12Stalking(b *testing.B) {
	var seed int64
	benchWriteAll(b, 64, 64,
		func() pram.Algorithm { seed++; return writeall.NewACC(seed) },
		func() pram.Adversary { return writeall.NewStalking(writeall.NewX().Layout(64, 64), false) },
		Config{})
}

// BenchmarkE13XFailStop: Section 5 open problem, X without restarts.
func BenchmarkE13XFailStop(b *testing.B) {
	benchWriteAll(b, 256, 256,
		func() pram.Algorithm { return writeall.NewX() },
		func() pram.Adversary {
			a := adversary.NewHalving()
			a.NoRestarts = true
			return a
		},
		Config{})
}

// BenchmarkE14XAblation: Remark 5, the X variants.
func BenchmarkE14XAblation(b *testing.B) {
	variants := map[string]func() pram.Algorithm{
		"X":         func() pram.Algorithm { return writeall.NewX() },
		"X+spacing": func() pram.Algorithm { return writeall.NewXWithOptions(writeall.XOptions{EvenSpacing: true}) },
		"X+counts":  func() pram.Algorithm { return writeall.NewXWithOptions(writeall.XOptions{CountProgress: true}) },
	}
	for name, mk := range variants {
		b.Run(name, func(b *testing.B) {
			benchWriteAll(b, 128, 32, mk,
				func() pram.Adversary { return adversary.NewRandom(0.2, 0.6, 29) },
				Config{})
		})
	}
}

// BenchmarkE15WvsV: the open question, W under a no-restart attack.
func BenchmarkE15WvsV(b *testing.B) {
	benchWriteAll(b, 256, 256,
		func() pram.Algorithm { return writeall.NewW() },
		func() pram.Adversary {
			a := adversary.NewHalving()
			a.NoRestarts = true
			return a
		},
		Config{})
}

// BenchmarkMachineTick measures raw simulator throughput: one tick of P
// one-cycle processors, failure-free.
func BenchmarkMachineTick(b *testing.B) {
	for _, p := range []int{16, 256, 4096} {
		b.Run(strconv.Itoa(p), func(b *testing.B) {
			benchWriteAll(b, p, p,
				func() pram.Algorithm { return writeall.NewTrivial() },
				func() pram.Adversary { return adversary.None{} },
				Config{})
		})
	}
}

// BenchmarkWriteAllAlgorithms compares every algorithm failure-free at one
// size (the paper's Table-less baseline comparison).
func BenchmarkWriteAllAlgorithms(b *testing.B) {
	algs := map[string]func() pram.Algorithm{
		"X":          func() pram.Algorithm { return writeall.NewX() },
		"V":          func() pram.Algorithm { return writeall.NewV() },
		"V+X":        func() pram.Algorithm { return writeall.NewCombined() },
		"W":          func() pram.Algorithm { return writeall.NewW() },
		"trivial":    func() pram.Algorithm { return writeall.NewTrivial() },
		"sequential": func() pram.Algorithm { return writeall.NewSequential() },
	}
	for name, mk := range algs {
		b.Run(name, func(b *testing.B) {
			benchWriteAll(b, 512, 64, mk,
				func() pram.Adversary { return adversary.None{} },
				Config{})
		})
	}
}

// BenchmarkExperimentTables runs each full (quick-scale) experiment table
// once per iteration - the exact generator behind cmd/experiments.
func BenchmarkExperimentTables(b *testing.B) {
	for _, e := range bench.All() {
		// E12's restart-stalking rows are deliberately long-running
		// demonstrations; keep the per-iteration cost of this
		// aggregate benchmark reasonable by skipping it here (it has
		// its own benchmark above).
		if e.ID == "E12" {
			continue
		}
		exp := e
		b.Run(exp.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = exp.Run(context.Background(), bench.Quick)
			}
		})
	}
}
