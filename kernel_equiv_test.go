package failstop

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/pram"
)

// recSink records the full event stream of a run for trace comparison.
type recSink struct {
	cycles []pram.CycleEvent
	ticks  []pram.TickEvent
	runs   []runRecord
}

// runRecord flattens RunEvent's error for comparability.
type runRecord struct {
	metrics pram.Metrics
	err     string
}

func (r *recSink) CycleDone(ev pram.CycleEvent) { r.cycles = append(r.cycles, ev) }
func (r *recSink) TickDone(ev pram.TickEvent)   { r.ticks = append(r.ticks, ev) }
func (r *recSink) RunDone(ev pram.RunEvent) {
	rec := runRecord{metrics: ev.Metrics}
	if ev.Err != nil {
		rec.err = ev.Err.Error()
	}
	r.runs = append(r.runs, rec)
}

// kernelRun is one run's complete observable outcome.
type kernelRun struct {
	metrics pram.Metrics
	mem     []Word
	trace   recSink
	err     string
}

func runUnderKernel(t *testing.T, mkAlg func() Algorithm, mkAdv func() Adversary, base Config, kern Kernel, workers int) kernelRun {
	t.Helper()
	cfg := base
	cfg.Kernel = kern
	cfg.Workers = workers
	var out kernelRun
	cfg.Sink = &out.trace
	m, err := pram.New(cfg, mkAlg(), mkAdv())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer m.Close()
	out.metrics, err = m.Run()
	if err != nil {
		out.err = err.Error()
	}
	out.mem = m.Memory().CopyInto(nil)
	return out
}

// TestKernelEquivalence is the determinism contract of the tick kernels:
// for every Write-All algorithm x adversary pairing, a serial-kernel run
// and a parallel-kernel run with identical seeds produce bit-identical
// metrics, final memory, event traces, and errors. Runs that legitimately
// do not terminate (V under the rotating thrasher) are compared at the
// tick-budget cutoff, which must also coincide.
func TestKernelEquivalence(t *testing.T) {
	const n, p = 64, 16
	base := Config{N: n, P: p, MaxTicks: 4000}
	snapshot := base
	snapshot.AllowSnapshot = true

	algs := []struct {
		name string
		cfg  Config
		mk   func() Algorithm
	}{
		{"X", base, NewX},
		{"X-in-place", base, NewXInPlace},
		{"V", base, NewV},
		{"combined", base, NewCombined},
		{"W", base, NewW},
		{"oblivious", snapshot, NewOblivious},
		{"ACC", base, func() Algorithm { return NewACC(11) }},
		{"trivial", base, NewTrivial},
		{"sequential", base, NewSequential},
		{"replicated", base, NewReplicated},
	}
	advs := []struct {
		name string
		mk   func() Adversary
	}{
		{"none", NoFailures},
		{"random", func() Adversary { return RandomFailures(0.2, 0.6, 7) }},
		{"random-budgeted", func() Adversary { return BudgetedRandomFailures(0.3, 0.7, 13, 64) }},
		{"thrashing", func() Adversary { return ThrashingAdversary(false) }},
		{"rotating", func() Adversary { return ThrashingAdversary(true) }},
		{"halving", HalvingAdversary},
	}

	for _, alg := range algs {
		for _, adv := range advs {
			t.Run(alg.name+"/"+adv.name, func(t *testing.T) {
				serial := runUnderKernel(t, alg.mk, adv.mk, alg.cfg, SerialKernel, 0)
				for _, workers := range []int{1, 3, 0 /* GOMAXPROCS */} {
					par := runUnderKernel(t, alg.mk, adv.mk, alg.cfg, ParallelKernel, workers)
					assertRunsEqual(t, fmt.Sprintf("workers=%d", workers), serial, par)
				}
				auto := runUnderKernel(t, alg.mk, adv.mk, alg.cfg, AutoKernel, 3)
				assertRunsEqual(t, "auto/workers=3", serial, auto)
			})
		}
	}

	// The tree-walking adversaries read algorithm X's progress-tree
	// layout out of shared memory, so they only pair with X.
	treeAdvs := []struct {
		name string
		mk   func() Adversary
	}{
		{"postorder", func() Adversary { return PostOrderAdversary(n, p) }},
		{"stalking", func() Adversary { return StalkingAdversary(n, p, true) }},
		{"stalking-failstop", func() Adversary { return StalkingAdversary(n, p, false) }},
	}
	for _, adv := range treeAdvs {
		t.Run("X/"+adv.name, func(t *testing.T) {
			serial := runUnderKernel(t, NewX, adv.mk, base, SerialKernel, 0)
			par := runUnderKernel(t, NewX, adv.mk, base, ParallelKernel, 4)
			assertRunsEqual(t, "workers=4", serial, par)
		})
	}
}

func assertRunsEqual(t *testing.T, label string, serial, par kernelRun) {
	t.Helper()
	if serial.err != par.err {
		t.Fatalf("%s: err = %q, serial = %q", label, par.err, serial.err)
	}
	if serial.metrics != par.metrics {
		t.Errorf("%s: metrics diverge:\nserial   %+v\nparallel %+v", label, serial.metrics, par.metrics)
	}
	if !reflect.DeepEqual(serial.mem, par.mem) {
		t.Errorf("%s: final memory diverges", label)
	}
	if !reflect.DeepEqual(serial.trace.ticks, par.trace.ticks) {
		t.Errorf("%s: tick traces diverge (serial %d events, parallel %d)",
			label, len(serial.trace.ticks), len(par.trace.ticks))
	}
	if !reflect.DeepEqual(serial.trace.cycles, par.trace.cycles) {
		t.Errorf("%s: cycle traces diverge (serial %d events, parallel %d)",
			label, len(serial.trace.cycles), len(par.trace.cycles))
	}
	if !reflect.DeepEqual(serial.trace.runs, par.trace.runs) {
		t.Errorf("%s: run events diverge: %+v vs %+v", label, serial.trace.runs, par.trace.runs)
	}
}

// TestKernelEquivalenceAutoProbing repeats the contract for AutoKernel at
// a P large enough (several shards, several workers) that the adaptive
// kernel actually runs its timed serial and parallel probe windows rather
// than short-circuiting to the serial walk. Probe timing must never leak
// into results — only into engine choice.
func TestKernelEquivalenceAutoProbing(t *testing.T) {
	const n, p = 256, 256
	base := Config{N: n, P: p, MaxTicks: 8000}
	for _, tc := range []struct {
		name  string
		mk    func() Algorithm
		mkAdv func() Adversary
	}{
		{"X/random", NewX, func() Adversary { return RandomFailures(0.2, 0.6, 7) }},
		{"trivial/thrashing", NewTrivial, func() Adversary { return ThrashingAdversary(false) }},
		{"V/none", NewV, NoFailures},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial := runUnderKernel(t, tc.mk, tc.mkAdv, base, SerialKernel, 0)
			for _, workers := range []int{2, 3} {
				auto := runUnderKernel(t, tc.mk, tc.mkAdv, base, AutoKernel, workers)
				assertRunsEqual(t, fmt.Sprintf("auto/workers=%d", workers), serial, auto)
			}
		})
	}
}

// TestKernelEquivalenceSquare repeats the contract at P = N, where every
// processor owns one cell and write conflicts peak.
func TestKernelEquivalenceSquare(t *testing.T) {
	const n = 32
	base := Config{N: n, P: n, MaxTicks: 4000}
	for _, alg := range []struct {
		name string
		mk   func() Algorithm
	}{
		{"X", NewX},
		{"V", NewV},
		{"combined", NewCombined},
	} {
		t.Run(alg.name, func(t *testing.T) {
			mkAdv := func() Adversary { return RandomFailures(0.25, 0.5, 3) }
			serial := runUnderKernel(t, alg.mk, mkAdv, base, SerialKernel, 0)
			par := runUnderKernel(t, alg.mk, mkAdv, base, ParallelKernel, 5)
			assertRunsEqual(t, "workers=5", serial, par)
		})
	}
}
