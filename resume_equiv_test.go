package failstop

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"repro/internal/adversary"
	"repro/internal/pram"
)

// resumeBaselineAndSuffix runs alg vs adv twice: once uninterrupted
// (recording the full trace), and once stepped to roughly the midpoint,
// snapshotted through the binary serialization round-trip, and restored
// into a third, freshly constructed machine that runs to completion. It
// returns the baseline truncated to the resumed suffix and the resumed
// run, both as kernelRun values for assertRunsEqual.
func resumeBaselineAndSuffix(t *testing.T, mkAlg func() Algorithm, mkAdv func() Adversary, cfg Config) (want, resumed kernelRun) {
	t.Helper()

	baseline := runUnderKernel(t, mkAlg, mkAdv, cfg, SerialKernel, 0)
	splitTick := baseline.metrics.Ticks / 2

	// Second machine: replay the first half of the run, snapshot.
	half, err := pram.New(cfg, mkAlg(), mkAdv())
	if err != nil {
		t.Fatalf("New (half run): %v", err)
	}
	defer half.Close()
	for half.Tick() < splitTick {
		done, err := half.Step()
		if err != nil {
			t.Fatalf("Step at tick %d: %v", half.Tick(), err)
		}
		if done {
			t.Fatalf("run completed at tick %d, before split tick %d", half.Tick(), splitTick)
		}
	}
	snap, err := half.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot at tick %d: %v", splitTick, err)
	}

	// Round-trip through the versioned binary format, as a resumed
	// process would.
	var buf bytes.Buffer
	if err := pram.WriteSnapshot(&buf, snap); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	loaded, err := pram.ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}

	// Third machine: fresh components, restore, run to completion.
	resumedCfg := cfg
	resumedCfg.Sink = &resumed.trace
	m, err := pram.New(resumedCfg, mkAlg(), mkAdv())
	if err != nil {
		t.Fatalf("New (resumed run): %v", err)
	}
	defer m.Close()
	if err := m.RestoreSnapshot(loaded); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	resumed.metrics, err = m.Run()
	if err != nil {
		resumed.err = err.Error()
	}
	resumed.mem = m.Memory().CopyInto(nil)

	// The resumed run must reproduce the baseline's outcome and the
	// trace suffix from the split tick on (cycle and tick events both
	// stamp the tick they belong to).
	want = kernelRun{metrics: baseline.metrics, mem: baseline.mem, err: baseline.err}
	want.trace.runs = baseline.trace.runs
	for _, ev := range baseline.trace.cycles {
		if ev.Tick >= splitTick {
			want.trace.cycles = append(want.trace.cycles, ev)
		}
	}
	for _, ev := range baseline.trace.ticks {
		if ev.Tick >= splitTick {
			want.trace.ticks = append(want.trace.ticks, ev)
		}
	}
	return want, resumed
}

// TestResumeEquivalence is the determinism contract of the checkpoint
// subsystem: for every Write-All algorithm x adversary pairing —
// including algorithms with private processor state (V, W, combined) and
// random streams (ACC, the random adversaries) — a run snapshotted at
// its midpoint, serialized, and resumed on a fresh machine is
// bit-identical to the uninterrupted run: same metrics, same final
// memory, same error, and the same event-trace suffix.
func TestResumeEquivalence(t *testing.T) {
	const n, p = 64, 16
	base := Config{N: n, P: p, MaxTicks: 4000}
	snapshot := base
	snapshot.AllowSnapshot = true

	algs := []struct {
		name string
		cfg  Config
		mk   func() Algorithm
	}{
		{"X", base, NewX},
		{"X-in-place", base, NewXInPlace},
		{"V", base, NewV},
		{"combined", base, NewCombined},
		{"W", base, NewW},
		{"oblivious", snapshot, NewOblivious},
		{"ACC", base, func() Algorithm { return NewACC(11) }},
		{"trivial", base, NewTrivial},
		{"sequential", base, NewSequential},
		{"replicated", base, NewReplicated},
	}
	advs := []struct {
		name string
		mk   func() Adversary
	}{
		{"none", NoFailures},
		{"random", func() Adversary { return RandomFailures(0.2, 0.6, 7) }},
		{"random-budgeted", func() Adversary { return BudgetedRandomFailures(0.3, 0.7, 13, 64) }},
		{"thrashing", func() Adversary { return ThrashingAdversary(false) }},
		{"rotating", func() Adversary { return ThrashingAdversary(true) }},
		{"halving", HalvingAdversary},
	}

	for _, alg := range algs {
		for _, adv := range advs {
			t.Run(alg.name+"/"+adv.name, func(t *testing.T) {
				want, resumed := resumeBaselineAndSuffix(t, alg.mk, adv.mk, alg.cfg)
				assertRunsEqual(t, "resumed", want, resumed)
			})
		}
	}

	// The tree-walking adversaries read algorithm X's progress-tree
	// layout out of shared memory, so they only pair with X.
	treeAdvs := []struct {
		name string
		mk   func() Adversary
	}{
		{"postorder", func() Adversary { return PostOrderAdversary(n, p) }},
		{"stalking", func() Adversary { return StalkingAdversary(n, p, true) }},
		{"stalking-failstop", func() Adversary { return StalkingAdversary(n, p, false) }},
	}
	for _, adv := range treeAdvs {
		t.Run("X/"+adv.name, func(t *testing.T) {
			want, resumed := resumeBaselineAndSuffix(t, NewX, adv.mk, base)
			assertRunsEqual(t, "resumed", want, resumed)
		})
	}
}

// TestResumeEquivalenceRecorded extends the contract to a recording
// adversary: a run snapshotted mid-way and resumed on a fresh machine
// must record the exact failure pattern the uninterrupted run records,
// so replay files from resumed runs are interchangeable with
// uninterrupted ones. (The pattern comparison is order-sensitive only
// across ticks; within a tick the recorder's order follows the decision
// map, so we compare the sorted per-tick groups via the serialized
// form.)
func TestResumeEquivalenceRecorded(t *testing.T) {
	cfg := Config{N: 64, P: 16, MaxTicks: 4000}
	const splitTick = 20
	mkRecorder := func() *adversary.Recorder {
		return adversary.NewRecorder(RandomFailures(0.25, 0.5, 21))
	}

	// Uninterrupted run.
	full := mkRecorder()
	m, err := pram.New(cfg, NewX(), full)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer m.Close()
	if _, err := m.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}

	// Interrupted run: snapshot at splitTick, resume on a fresh machine
	// with a fresh recorder (its recorded prefix is restored from the
	// snapshot).
	half := mkRecorder()
	mh, err := pram.New(cfg, NewX(), half)
	if err != nil {
		t.Fatalf("New (half): %v", err)
	}
	defer mh.Close()
	for mh.Tick() < splitTick {
		if done, err := mh.Step(); done || err != nil {
			t.Fatalf("Step: done=%v err=%v", done, err)
		}
	}
	snap, err := mh.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	resumed := mkRecorder()
	mr, err := pram.New(cfg, NewX(), resumed)
	if err != nil {
		t.Fatalf("New (resumed): %v", err)
	}
	defer mr.Close()
	if err := mr.RestoreSnapshot(snap); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if _, err := mr.Run(); err != nil {
		t.Fatalf("Run (resumed): %v", err)
	}

	want := sortedPattern(full.Pattern())
	got := sortedPattern(resumed.Pattern())
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("recorded patterns diverge:\nfull    %d events %+v\nresumed %d events %+v",
			len(want), want, len(got), got)
	}
}

// sortedPattern orders a recorded pattern by (tick, pid, kind) so runs
// whose within-tick decision-map iteration order differs still compare
// equal when they inflicted the same failures.
func sortedPattern(events []adversary.Event) []adversary.Event {
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Tick != b.Tick {
			return a.Tick < b.Tick
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		return a.Kind < b.Kind
	})
	return events
}
