package failstop

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/pram"
)

// TestChaosResumeEquivalence is the randomized end-to-end check of the
// harness's own failure model: a checkpointed run whose snapshot I/O is
// bombarded with injected faults — torn writes, silent bit corruption,
// failing fsyncs and renames — must still finish with exactly the
// metrics of an undisturbed run. A failed checkpoint kills the run (the
// simulated crash); the driver then resumes from the newest loadable
// checkpoint generation, or restarts from scratch when corruption has
// poisoned both. The test is opt-in (PRAM_CHAOS=1, see `make chaos`)
// because it is randomized by design; every run prints its seed so a
// failure replays exactly via PRAM_CHAOS_SEED.
func TestChaosResumeEquivalence(t *testing.T) {
	if os.Getenv("PRAM_CHAOS") == "" {
		t.Skip("chaos testing is opt-in: set PRAM_CHAOS=1 (or run `make chaos`)")
	}
	seed := time.Now().UnixNano()
	if s := os.Getenv("PRAM_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("PRAM_CHAOS_SEED=%q: %v", s, err)
		}
		seed = v
	}
	t.Logf("chaos seed %d (replay with PRAM_CHAOS_SEED=%d)", seed, seed)

	grid := []struct {
		name  string
		mkAlg func() Algorithm
		mkAdv func() Adversary
	}{
		{"X/random", NewX, func() Adversary { return RandomFailures(0.2, 0.6, 7) }},
		{"X/thrashing", NewX, func() Adversary { return ThrashingAdversary(false) }},
		{"V/random-budgeted", NewV, func() Adversary { return BudgetedRandomFailures(0.3, 0.7, 13, 64) }},
		{"W/random", NewW, func() Adversary { return RandomFailures(0.25, 0.5, 21) }},
		{"ACC/none", func() Algorithm { return NewACC(11) }, NoFailures},
	}
	cfg := Config{N: 96, P: 12, MaxTicks: 200000}

	for i, cell := range grid {
		cellSeed := seed + int64(i)*0x9e3779b9
		t.Run(cell.name, func(t *testing.T) {
			chaosCell(t, cfg, cell.mkAlg, cell.mkAdv, cellSeed)
		})
	}
}

// chaosCell runs one (algorithm, adversary) pairing: a fault-free
// baseline, then the crash/resume loop under injected snapshot faults,
// and asserts the survivor's final metrics are bit-identical.
func chaosCell(t *testing.T, cfg Config, mkAlg func() Algorithm, mkAdv func() Adversary, seed int64) {
	// Fault-free baseline on a fresh machine.
	mb, err := pram.New(cfg, mkAlg(), mkAdv())
	if err != nil {
		t.Fatalf("New (baseline): %v", err)
	}
	defer mb.Close()
	baseline, err := mb.Run()
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	if baseline.Ticks < 20 {
		t.Fatalf("baseline finished in %d ticks; too short to checkpoint meaningfully", baseline.Ticks)
	}

	// ~40 checkpoints per run regardless of the pairing's natural length
	// (W under heavy churn runs hundreds of times longer than X), so the
	// crash rate per attempt stays in the regime where resuming makes
	// forward progress.
	every := baseline.Ticks / 40
	if every < 5 {
		every = 5
	}

	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	var logLines int
	r := &pram.Runner{
		CheckpointEvery: every,
		CheckpointPath:  filepath.Join(dir, "chaos.ckpt"),
		Log: func(format string, args ...any) {
			logLines++
			t.Logf("runner: "+format, args...)
		},
	}
	defer r.Close()

	var (
		final   Metrics
		crashes int
		resets  int
		resume  bool
	)
	const maxAttempts = 300
	attempt := 0
	for {
		attempt++
		if attempt > maxAttempts {
			t.Fatalf("no completion after %d attempts (%d crashes, %d restarts from scratch)",
				maxAttempts, crashes, resets)
		}
		old := faultinject.Swap(chaosRegistry(rng))
		if resume {
			final, err = r.ResumeLatestCtx(context.Background(), cfg, mkAlg(), mkAdv())
		} else {
			final, err = r.RunCtx(context.Background(), cfg, mkAlg(), mkAdv())
		}
		faultinject.Swap(old)
		if err == nil {
			break
		}
		switch {
		case errors.Is(err, faultinject.ErrInjected):
			// A checkpoint died mid-save: the simulated crash. Resume
			// from whichever generation still loads.
			crashes++
			resume = true
		case resume:
			// Both checkpoint generations are unloadable (corruption
			// got them all) — the real-world recovery is a restart from
			// scratch, which determinism makes merely slow, not wrong.
			resets++
			resume = false
		default:
			t.Fatalf("attempt %d failed outside the fault model: %v", attempt, err)
		}
	}
	t.Logf("survived %d simulated crashes, %d restarts from scratch, %d runner notices",
		crashes, resets, logLines)
	if final != baseline {
		t.Errorf("chaos run diverged from fault-free baseline:\nchaos    %+v\nbaseline %+v",
			final, baseline)
	}
}

// chaosRegistry builds one attempt's fault mix: the snapshot write path
// tears or silently corrupts, and fsync/rename fail, each independently
// and probabilistically. Journal and kernel points stay clean — the
// chaos contract is that snapshot-I/O faults never change the logical
// run, only how often it has to crash and resume.
func chaosRegistry(rng *rand.Rand) *faultinject.Registry {
	reg := faultinject.New(rng.Int63())
	writeMode := faultinject.Torn
	if rng.Intn(2) == 0 {
		writeMode = faultinject.Corrupt
	}
	reg.Set("snapshot.write", faultinject.Spec{Mode: writeMode, Prob: 0.1})
	reg.Set("snapshot.sync", faultinject.Spec{Mode: faultinject.Error, Prob: 0.05})
	reg.Set("snapshot.rename", faultinject.Spec{Mode: faultinject.Error, Prob: 0.05})
	return reg
}
