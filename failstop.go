package failstop

import (
	"io"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/pram"
	"repro/internal/writeall"
)

// Core machine types, re-exported from the simulator substrate.
type (
	// Word is the shared-memory word type.
	Word = pram.Word
	// Config parameterizes a machine run (input size N, processors P,
	// write policy, tick budget, liveness enforcement).
	Config = pram.Config
	// Metrics is the accounting of one run: completed work S, S', |F|,
	// overhead ratio, and update-cycle statistics.
	Metrics = pram.Metrics
	// Machine is one configured simulation run.
	Machine = pram.Machine
	// Runner executes many runs on one pooled Machine, reusing memory,
	// scratch state, and (via Resettable) processor state across runs.
	Runner = pram.Runner
	// Resettable marks Processor implementations whose state can be
	// reinitialized in place, letting machines recycle them across
	// restarts and pooled runs.
	Resettable = pram.Resettable
	// ArrayDoneHinter marks Algorithms with array-style Done predicates
	// ("cells [0, k) all non-zero"), enabling the machine's O(1)
	// incremental completion counter.
	ArrayDoneHinter = pram.ArrayDoneHinter
	// Algorithm is a fault-tolerant PRAM algorithm.
	Algorithm = pram.Algorithm
	// Adversary is an on-line failure/restart adversary.
	Adversary = pram.Adversary
	// Kernel selects the tick-execution strategy (Config.Kernel).
	Kernel = pram.Kernel
	// MemoryView is a read-only view of the shared memory, as handed to
	// Algorithm.Done and adversaries.
	MemoryView = pram.MemoryView
	// Sink observes a run's cycle-, tick-, and run-level events.
	Sink = pram.Sink
	// CycleEvent reports one processor's update cycle outcome.
	CycleEvent = pram.CycleEvent
	// TickEvent reports one tick's aggregate profile.
	TickEvent = pram.TickEvent
	// RunEvent reports a finished run.
	RunEvent = pram.RunEvent
	// TickFunc adapts a function to a tick-only Sink.
	TickFunc = pram.TickFunc
	// MultiSink fans events out to several sinks in order.
	MultiSink = pram.MultiSink
	// ProcTracker is a Sink accumulating per-processor work and progress.
	ProcTracker = pram.ProcTracker
	// JSONL is a Sink streaming events as JSON lines.
	JSONL = pram.JSONL
	// Snapshotter marks components (processors, algorithms, adversaries)
	// whose private state can be captured into and restored from a
	// machine snapshot.
	Snapshotter = pram.Snapshotter
	// Snapshot is a machine's complete mid-run state, as captured by
	// Machine.Snapshot and replayed by Machine.RestoreSnapshot.
	Snapshot = pram.Snapshot
	// Program is an N-processor synchronous PRAM program for the robust
	// executor.
	Program = core.Program
	// Engine selects the executor's Write-All engine (EngineVX or
	// EngineX).
	Engine = core.Engine
)

// Write policies of the CRCW machine.
const (
	// Common is the COMMON CRCW PRAM (concurrent writers must agree).
	Common = pram.Common
	// Arbitrary lets one concurrent writer win (lowest PID here).
	Arbitrary = pram.Arbitrary
	// Priority lets the lowest-PID concurrent writer win.
	Priority = pram.Priority
	// CREW forbids concurrent writes.
	CREW = pram.CREW
	// EREW forbids concurrent reads and writes.
	EREW = pram.EREW
)

// Tick kernels (Config.Kernel): how a machine executes the attempt phase
// of each tick. All produce bit-identical runs.
const (
	// SerialKernel attempts cycles one PID at a time (the default).
	SerialKernel = pram.SerialKernel
	// ParallelKernel shards the attempt phase across worker goroutines
	// (Config.Workers; commit stays serial in PID order).
	ParallelKernel = pram.ParallelKernel
	// AutoKernel picks serial vs. sharded execution from P, the worker
	// count, and periodic timed probes of both engines.
	AutoKernel = pram.AutoKernel
)

// NewProcTracker returns a ProcTracker for p processors; pass it as
// Config.Sink.
func NewProcTracker(p int) *ProcTracker { return pram.NewProcTracker(p) }

// NewJSONL returns a JSONL sink writing to w; pass it as Config.Sink.
func NewJSONL(w io.Writer) *JSONL { return pram.NewJSONL(w) }

// Executor engines (Theorem 4.1).
const (
	// EngineVX interleaves algorithms V and X (the paper's construction;
	// work-optimal per Corollary 4.12).
	EngineVX = core.EngineVX
	// EngineX uses algorithm X alone (terminating but not work-optimal).
	EngineX = core.EngineX
)

// NewX returns the paper's algorithm X (Section 4.2): local progress-tree
// search with PID-bit descent; S = O(N * P^{log 1.5 + eps}) under any
// failure/restart pattern.
func NewX() Algorithm { return writeall.NewX() }

// NewXInPlace returns the Remark 7 in-place variant of X, which uses the
// Write-All array itself as the progress tree.
func NewXInPlace() Algorithm { return writeall.NewXInPlace() }

// NewV returns the paper's algorithm V (Section 4.1): synchronous
// allocate/work/update phases with an iteration wrap-around counter;
// S = O(N + P log^2 N + M log N), but termination is not guaranteed alone.
func NewV() Algorithm { return writeall.NewV() }

// NewCombined returns the Theorem 4.9 interleaving of V and X: the min of
// both bounds with guaranteed termination.
func NewCombined() Algorithm { return writeall.NewCombined() }

// NewW returns algorithm W of [KS 89], the fail-stop (no restart)
// baseline.
func NewW() Algorithm { return writeall.NewW() }

// NewOblivious returns the Theorem 3.2 snapshot algorithm; machines
// running it need Config.AllowSnapshot.
func NewOblivious() Algorithm { return writeall.NewOblivious() }

// NewACC returns the randomized coupon-clipping stand-in for the [MSP 90]
// algorithm analyzed in Section 5.
func NewACC(seed int64) Algorithm { return writeall.NewACC(seed) }

// NewTrivial returns the non-fault-tolerant parallel assignment baseline.
func NewTrivial() Algorithm { return writeall.NewTrivial() }

// NewSequential returns the single-processor checkpointing baseline.
func NewSequential() Algorithm { return writeall.NewSequential() }

// NewReplicated returns the quadratic maximal-redundancy baseline, whose
// private sweep positions starve under sustained restart churn - the trap
// the paper's shared-memory progress structures avoid.
func NewReplicated() Algorithm { return writeall.NewReplicated() }

// NoFailures returns the failure-free adversary.
func NoFailures() Adversary { return adversary.None{} }

// RandomFailures returns an adversary that fails each live processor with
// probability failProb per tick and restarts each dead one with
// probability restartProb, deterministically for a fixed seed.
func RandomFailures(failProb, restartProb float64, seed int64) Adversary {
	return adversary.NewRandom(failProb, restartProb, seed)
}

// BudgetedRandomFailures is RandomFailures with at most maxEvents failure
// and restart events in total (a failure pattern of size <= maxEvents).
func BudgetedRandomFailures(failProb, restartProb float64, seed, maxEvents int64) Adversary {
	a := adversary.NewRandom(failProb, restartProb, seed)
	a.MaxEvents = maxEvents
	return a
}

// ThrashingAdversary returns the Example 2.2 adversary: all processors
// read, all but one fail before writing, everyone restarts. With rotate
// set the survivor rotates, which starves iterative algorithms like V.
func ThrashingAdversary(rotate bool) Adversary {
	return adversary.Thrashing{Rotate: rotate}
}

// HalvingAdversary returns the Theorem 3.1 pigeonhole lower-bound
// adversary, which forces Omega(N log N) completed work on any Write-All
// algorithm.
func HalvingAdversary() Adversary { return adversary.NewHalving() }

// PostOrderAdversary returns the Theorem 4.8 adversary against algorithm
// X for a Write-All instance of size n with p processors.
func PostOrderAdversary(n, p int) Adversary {
	return writeall.NewPostOrder(writeall.NewX().Layout(n, p))
}

// StalkingAdversary returns the Section 5 adversary that fails every
// processor touching one chosen leaf of the progress tree (of a size-n,
// p-processor ACC or X instance); restartable selects the failure model
// variant.
func StalkingAdversary(n, p int, restartable bool) Adversary {
	return writeall.NewStalking(writeall.NewX().Layout(n, p), restartable)
}

// RunWriteAll solves a Write-All instance: cfg.N cells, cfg.P processors,
// under adv. It returns the run's metrics; the Write-All postcondition is
// guaranteed on success.
func RunWriteAll(alg Algorithm, adv Adversary, cfg Config) (Metrics, error) {
	m, err := pram.New(cfg, alg, adv)
	if err != nil {
		return Metrics{}, err
	}
	return m.Run()
}

// SaveSnapshot writes a snapshot to path atomically (write-tmp-rename).
func SaveSnapshot(path string, s *Snapshot) error { return pram.SaveSnapshot(path, s) }

// LoadSnapshot reads a snapshot written by SaveSnapshot, verifying its
// format version and checksum.
func LoadSnapshot(path string) (*Snapshot, error) { return pram.LoadSnapshot(path) }

// Result is the outcome of a robust program execution.
type Result struct {
	// Metrics is the machine accounting for the whole program.
	Metrics Metrics
	// Memory is the final simulated shared memory.
	Memory []Word
}

// Execute runs an N-processor PRAM program on p restartable fail-stop
// processors under adv (Theorem 4.1), using the paper's combined V+X
// engine. Leave cfg zero-valued unless you need a custom policy or tick
// budget; N and P are set from the program and p.
func Execute(program Program, p int, adv Adversary, cfg Config) (Result, error) {
	return ExecuteWithEngine(program, p, adv, cfg, EngineVX)
}

// ExecuteWithEngine is Execute with an explicit Write-All engine.
func ExecuteWithEngine(program Program, p int, adv Adversary, cfg Config, engine Engine) (Result, error) {
	m, err := core.NewMachineWithEngine(program, p, adv, cfg, engine)
	if err != nil {
		return Result{}, err
	}
	metrics, err := m.Run()
	if err != nil {
		return Result{Metrics: metrics}, err
	}
	return Result{
		Metrics: metrics,
		Memory:  core.SimMemory(m.Memory(), program),
	}, nil
}
