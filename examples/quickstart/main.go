// Quickstart: solve a Write-All instance with the paper's combined V+X
// algorithm while an adversary randomly fails and restarts processors,
// then inspect the paper's accounting measures.
package main

import (
	"fmt"
	"log"

	failstop "repro"
)

func main() {
	const n = 1024 // array size and processor count

	// The combined algorithm (Theorem 4.9) interleaves V's balanced
	// synchronous iterations with X's local tree search: it keeps the
	// better of the two work bounds and always terminates.
	alg := failstop.NewCombined()

	// An on-line adversary that fails each live processor with
	// probability 0.15 per step and restarts each failed one with
	// probability 0.5. Deterministic for a fixed seed.
	adv := failstop.RandomFailures(0.15, 0.5, 42)

	metrics, err := failstop.RunWriteAll(alg, adv, failstop.Config{N: n, P: n})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("solved Write-All of size %d with %d processors under %q\n",
		n, n, adv.Name())
	fmt.Printf("  completed work S:       %d (%.2f per cell)\n",
		metrics.S(), float64(metrics.S())/float64(n))
	fmt.Printf("  failures / restarts:    %d / %d\n", metrics.Failures, metrics.Restarts)
	fmt.Printf("  overhead ratio sigma:   %.2f (= S / (N + |F|))\n", metrics.Overhead())
	fmt.Printf("  parallel time (ticks):  %d\n", metrics.Ticks)
}
