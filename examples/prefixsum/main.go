// Robust prefix sums: execute a classic N-processor PRAM algorithm
// (recursive doubling) on a machine whose processors crash and restart,
// using the paper's Theorem 4.1 simulation, and verify that the output is
// identical to the failure-free semantics.
package main

import (
	"fmt"
	"log"

	failstop "repro"
	"repro/internal/prog"
)

func main() {
	const n = 256

	// An in-place recursive-doubling prefix sum: log2(N) synchronous
	// steps, each simulated processor updates its own cell. The robust
	// executor runs every step as two Write-All phases (execute into
	// scratch, then commit), so re-execution after failures is
	// idempotent and every step sees a consistent memory.
	program := prog.PrefixSum{N: n}

	// A hostile schedule: 20% of live processors fail per tick and half
	// of the dead ones come back, forever.
	adv := failstop.RandomFailures(0.2, 0.5, 7)

	res, err := failstop.Execute(program, n, adv, failstop.Config{})
	if err != nil {
		log.Fatal(err)
	}

	if err := program.Check(res.Memory); err != nil {
		log.Fatalf("robust execution diverged from PRAM semantics: %v", err)
	}

	m := res.Metrics
	tau := program.Steps()
	fmt.Printf("prefix sums over %d cells in %d simulated steps\n", n, tau)
	fmt.Printf("  final cell:            %d (= sum of all inputs)\n", res.Memory[n-1])
	fmt.Printf("  failures / restarts:   %d / %d\n", m.Failures, m.Restarts)
	fmt.Printf("  completed work S:      %d (%.1fx the failure-free tau*N)\n",
		m.S(), float64(m.S())/(float64(tau)*float64(n)))
	fmt.Printf("  overhead ratio sigma:  %.2f (Theorem 4.1 bounds it by O(log^2 N))\n",
		float64(m.S())/(float64(tau)*float64(n)+float64(m.FSize())))
	fmt.Println("  output matches the failure-free run exactly")
}
