// Why update cycles? This example reproduces the paper's Example 2.2: a
// thrashing adversary lets every processor read, kills all but one before
// they write, and revives everyone - every tick. If work charged every
// started cycle (the measure S'), every algorithm would look quadratic; the
// paper's completed-work measure S, which only charges completed update
// cycles, correctly attributes the waste to the adversary's |F| instead.
package main

import (
	"fmt"
	"log"

	failstop "repro"
)

func main() {
	fmt.Println("Example 2.2: the thrashing adversary (P = N)")
	fmt.Printf("%8s %10s %12s %10s %12s\n", "N", "S", "S'", "S/N", "S'/(N*P)")

	for _, n := range []int{64, 128, 256, 512} {
		m, err := failstop.RunWriteAll(
			failstop.NewTrivial(),
			failstop.ThrashingAdversary(false),
			failstop.Config{N: n, P: n},
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %10d %12d %10.2f %12.2f\n",
			n, m.S(), m.SPrime(),
			float64(m.S())/float64(n),
			float64(m.SPrime())/float64(n*n))
	}

	fmt.Println()
	fmt.Println("S grows linearly while S' grows like N*P: charging unfinished cycles")
	fmt.Println("would make even optimal algorithms look quadratic, which is why the")
	fmt.Println("paper's accounting (Section 2.2) charges completed update cycles only.")
}
