// The algorithm landscape: run every Write-All algorithm in the library
// against the same hostile schedule and see why the paper's algorithms -
// which keep their progress in reliable shared memory - are the only ones
// that stay both correct and efficient in the restartable fail-stop model.
package main

import (
	"errors"
	"fmt"
	"log"

	failstop "repro"
	"repro/internal/pram"
)

func main() {
	const n = 256
	const p = n / 4 // each processor owns several cells: fault tolerance matters

	type entry struct {
		name     string
		alg      failstop.Algorithm
		snapshot bool
	}
	entries := []entry{
		{name: "trivial (no fault tolerance)", alg: failstop.NewTrivial()},
		{name: "replicated (private sweeps)", alg: failstop.NewReplicated()},
		{name: "sequential (1 worker, checkpointed)", alg: failstop.NewSequential()},
		{name: "W [KS 89] (built for no restarts)", alg: failstop.NewW()},
		{name: "V (paper 4.1)", alg: failstop.NewV()},
		{name: "X (paper 4.2)", alg: failstop.NewX()},
		{name: "X in place (Remark 7)", alg: failstop.NewXInPlace()},
		{name: "V+X combined (Thm 4.9)", alg: failstop.NewCombined()},
		{name: "oblivious (Thm 3.2, snapshot model)", alg: failstop.NewOblivious(), snapshot: true},
		{name: "ACC (randomized, [MSP 90]-style)", alg: failstop.NewACC(3)},
	}

	fmt.Printf("Write-All, N = %d, P = %d, sustained random failures and restarts\n\n", n, p)
	fmt.Printf("  %-38s %10s %8s %9s\n", "algorithm", "work S", "ticks", "finished")

	for _, e := range entries {
		adv := failstop.RandomFailures(0.45, 0.7, 11)
		cfg := failstop.Config{N: n, P: p, MaxTicks: 40000, AllowSnapshot: e.snapshot}
		m, err := failstop.RunWriteAll(e.alg, adv, cfg)
		finished := "yes"
		work := fmt.Sprintf("%d", m.S())
		if err != nil {
			if !errors.Is(err, pram.ErrTickLimit) {
				log.Fatal(err)
			}
			finished = "NO (starved)"
			work = ">" + work
		}
		fmt.Printf("  %-38s %10s %8d %9s\n", e.name, work, m.Ticks, finished)
	}

	fmt.Println()
	fmt.Println("Progress that lives only in private memory is wiped by every restart:")
	fmt.Println("replicated's full sweeps starve outright, trivial limps (every death")
	fmt.Println("rewinds its stride), and the synchronized iterations of W and V starve")
	fmt.Println("or crawl when few processors survive a whole iteration. X keeps its")
	fmt.Println("position in reliable shared memory and the combined V+X inherits both")
	fmt.Println("its termination guarantee and V's balance - the paper's Theorem 4.9.")
}
