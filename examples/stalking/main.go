// Randomization is no defense against an on-line adversary: this example
// reproduces the paper's Section 5 stalking adversary, which picks one
// leaf of the randomized ACC algorithm's progress tree and fails every
// processor that touches it. Against off-line (pre-committed) failure
// patterns ACC is efficient; against the on-line stalker its work blows up
// with the processor count, while the deterministic algorithm X - whose
// position survives in shared memory - is unaffected.
package main

import (
	"errors"
	"fmt"
	"log"

	failstop "repro"
	"repro/internal/pram"
)

func main() {
	const n = 64

	show := func(label string, m failstop.Metrics, finished bool) {
		mark := ""
		if !finished {
			mark = "+ (budget exhausted; true expected work is larger)"
		}
		fmt.Printf("  %-34s S = %8d%s\n", label, m.S(), mark)
	}

	run := func(alg failstop.Algorithm, adv failstop.Adversary, p int) (failstop.Metrics, bool) {
		m, err := failstop.RunWriteAll(alg, adv, failstop.Config{N: n, P: p, MaxTicks: 300000})
		if err != nil {
			if errors.Is(err, pram.ErrTickLimit) {
				return m, false
			}
			log.Fatal(err)
		}
		return m, true
	}

	fmt.Printf("Section 5: stalking the randomized ACC algorithm (N = %d)\n\n", n)

	m, ok := run(failstop.NewACC(1), failstop.NoFailures(), n)
	show("ACC, no failures (P=64):", m, ok)

	m, ok = run(failstop.NewACC(1), failstop.RandomFailures(0.1, 0.5, 9), n)
	show("ACC, off-line random (P=64):", m, ok)

	m, ok = run(failstop.NewACC(1), failstop.StalkingAdversary(n, n, false), n)
	show("ACC, stalking fail-stop (P=64):", m, ok)

	for _, p := range []int{2, 4, 8} {
		m, ok = run(failstop.NewACC(1), failstop.StalkingAdversary(n, p, true),
			p)
		show(fmt.Sprintf("ACC, stalking w/ restarts (P=%d):", p), m, ok)
	}

	m, ok = run(failstop.NewX(), failstop.StalkingAdversary(n, n, true), n)
	show("X, same stalker (P=64):", m, ok)

	fmt.Println()
	fmt.Println("The stalked leaf only completes when every live processor touches it")
	fmt.Println("at once, so ACC's expected work explodes with P; X keeps its position")
	fmt.Println("in reliable shared memory and finishes as if nothing happened.")
}
