// Package failstop is a library for studying efficient parallel
// computation on restartable fail-stop processors, reproducing
// Kanellakis and Shvartsman, "Efficient Parallel Algorithms on Restartable
// Fail-Stop Processors" (PODC 1991, DOI 10.1145/112600.112603).
//
// It provides:
//
//   - a deterministic synchronous CRCW PRAM simulator whose processors
//     fail and restart under an on-line adversary, with the paper's
//     update-cycle accounting (completed work S, charge-everything S',
//     failure pattern size |F|, overhead ratio sigma);
//   - the paper's Write-All algorithms - V (synchronous phases with an
//     iteration wrap-around counter), X (local PID-directed tree search),
//     their Theorem 4.9 combination, the Theorem 3.2 oblivious snapshot
//     strategy - together with the [KS 89] algorithm W baseline, trivial
//     and sequential baselines, and a randomized coupon-clipping stand-in
//     for the [MSP 90] ACC algorithm;
//   - the paper's adversaries: thrashing (Example 2.2), the pigeonhole
//     halving lower-bound strategy (Theorem 3.1), the post-order attack
//     on X (Theorem 4.8), the leaf-stalking attack on ACC (Section 5),
//     plus random, scheduled, and composite patterns;
//   - a robust executor (Theorem 4.1) that runs arbitrary N-processor
//     PRAM programs on P restartable fail-stop processors via the
//     iterated Write-All paradigm of [KPS 90] and [Shv 89], with sample
//     programs (reduction, prefix sums, list ranking, sorting, matrix
//     multiplication);
//   - an experiment harness regenerating the quantitative shape of every
//     theorem, lemma, corollary and example in the paper (see DESIGN.md
//     and EXPERIMENTS.md).
//
// # Quick start
//
//	alg := failstop.NewX()
//	adv := failstop.RandomFailures(0.1, 0.5, 42)
//	metrics, err := failstop.RunWriteAll(alg, adv, failstop.Config{N: 1024, P: 1024})
//	if err != nil { ... }
//	fmt.Println("completed work:", metrics.S(), "overhead:", metrics.Overhead())
//
// # Model
//
// The machine advances in synchronous ticks; every live processor attempts
// one update cycle (<= 4 shared reads, O(1) private compute, <= 2 shared
// writes) per tick. The adversary sees everything - including the writes
// each processor is about to perform - and may fail any processor before
// its reads, after its reads, or between its writes, and restart failed
// processors. Failed processors lose all private memory except a one-word
// stable action counter ([SS 83]). The machine enforces the model's
// liveness rule: at least one update cycle completes per tick.
package failstop
