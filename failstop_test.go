package failstop_test

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	failstop "repro"
	"repro/internal/pram"
	"repro/internal/prog"
)

func TestRunWriteAllAllPublicAlgorithms(t *testing.T) {
	algs := []struct {
		mk       func() failstop.Algorithm
		snapshot bool
	}{
		{mk: failstop.NewX},
		{mk: failstop.NewXInPlace},
		{mk: failstop.NewV},
		{mk: failstop.NewCombined},
		{mk: failstop.NewW},
		{mk: failstop.NewOblivious, snapshot: true},
		{mk: func() failstop.Algorithm { return failstop.NewACC(11) }},
		{mk: failstop.NewTrivial},
		{mk: failstop.NewSequential},
	}
	for _, tt := range algs {
		alg := tt.mk()
		t.Run(alg.Name(), func(t *testing.T) {
			cfg := failstop.Config{N: 64, P: 16, AllowSnapshot: tt.snapshot}
			got, err := failstop.RunWriteAll(tt.mk(), failstop.NoFailures(), cfg)
			if err != nil {
				t.Fatalf("RunWriteAll: %v", err)
			}
			if got.S() == 0 {
				t.Error("S = 0; no work recorded")
			}
		})
	}
}

func TestRunWriteAllAllPublicAdversaries(t *testing.T) {
	const n, p = 64, 16
	advs := []failstop.Adversary{
		failstop.NoFailures(),
		failstop.RandomFailures(0.2, 0.5, 3),
		failstop.BudgetedRandomFailures(0.2, 0.5, 3, 40),
		failstop.ThrashingAdversary(false),
		failstop.ThrashingAdversary(true),
		failstop.HalvingAdversary(),
		failstop.PostOrderAdversary(n, p),
		failstop.StalkingAdversary(n, p, true),
		failstop.StalkingAdversary(n, p, false),
	}
	for _, adv := range advs {
		t.Run(adv.Name(), func(t *testing.T) {
			if _, err := failstop.RunWriteAll(failstop.NewX(), adv,
				failstop.Config{N: n, P: p}); err != nil {
				t.Fatalf("RunWriteAll: %v", err)
			}
		})
	}
}

func TestRunWriteAllRejectsBadConfig(t *testing.T) {
	if _, err := failstop.RunWriteAll(failstop.NewX(), failstop.NoFailures(),
		failstop.Config{N: 0, P: 4}); err == nil {
		t.Fatal("want error for N = 0")
	}
}

func TestExecuteValidatesOutput(t *testing.T) {
	p := prog.PrefixSum{N: 64}
	res, err := failstop.Execute(p, 64, failstop.RandomFailures(0.2, 0.6, 5), failstop.Config{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if err := p.Check(res.Memory); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Metrics.FSize() == 0 {
		t.Error("|F| = 0; adversary never fired")
	}
}

func TestExecuteRejectsOversubscription(t *testing.T) {
	if _, err := failstop.Execute(prog.Assign{N: 4}, 16,
		failstop.NoFailures(), failstop.Config{}); err == nil {
		t.Fatal("want error for P > N")
	}
}

func TestExecuteEnginesAgreeOnOutput(t *testing.T) {
	p := prog.ListRank{N: 32}
	var memories [][]failstop.Word
	for _, eng := range []failstop.Engine{failstop.EngineVX, failstop.EngineX} {
		res, err := failstop.ExecuteWithEngine(p, 8,
			failstop.RandomFailures(0.15, 0.6, 77), failstop.Config{}, eng)
		if err != nil {
			t.Fatalf("ExecuteWithEngine(%v): %v", eng, err)
		}
		memories = append(memories, res.Memory)
	}
	for i := range memories[0] {
		if memories[0][i] != memories[1][i] {
			t.Fatalf("engines disagree at cell %d: %d vs %d",
				i, memories[0][i], memories[1][i])
		}
	}
}

func TestPublicWriteAllPostconditionProperty(t *testing.T) {
	f := func(rawN uint8, rawP uint8, seed int64) bool {
		n := int(rawN%100) + 1
		p := int(rawP)%n + 1
		_, err := failstop.RunWriteAll(
			failstop.NewCombined(),
			failstop.RandomFailures(0.25, 0.6, seed),
			failstop.Config{N: n, P: p},
		)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestVStallsButCombinedFinishes(t *testing.T) {
	// The headline Theorem 4.9 behaviour through the public API.
	cfg := failstop.Config{N: 64, P: 64, MaxTicks: 5000}
	_, err := failstop.RunWriteAll(failstop.NewV(), failstop.ThrashingAdversary(true), cfg)
	if !errors.Is(err, pram.ErrTickLimit) {
		t.Fatalf("V err = %v, want tick limit (stall)", err)
	}
	if _, err := failstop.RunWriteAll(failstop.NewCombined(),
		failstop.ThrashingAdversary(true), cfg); err != nil {
		t.Fatalf("combined err = %v, want success", err)
	}
}

func ExampleRunWriteAll() {
	metrics, err := failstop.RunWriteAll(
		failstop.NewCombined(),
		failstop.NoFailures(),
		failstop.Config{N: 8, P: 8},
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("failures:", metrics.FSize())
	// Output: failures: 0
}

func ExampleExecute() {
	res, err := failstop.Execute(
		prog.ReduceSum{N: 8}, // sums 1..8 into cell 0
		8,
		failstop.RandomFailures(0.3, 0.7, 4),
		failstop.Config{},
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("sum:", res.Memory[0])
	// Output: sum: 36
}

func TestFacadeNames(t *testing.T) {
	tests := []struct {
		give interface{ Name() string }
		want string
	}{
		{give: failstop.NewReplicated(), want: "replicated"},
		{give: failstop.NewOblivious(), want: "oblivious"},
		{give: failstop.PostOrderAdversary(16, 4), want: "postorder"},
		{give: failstop.StalkingAdversary(16, 4, true), want: "stalking"},
		{give: failstop.StalkingAdversary(16, 4, false), want: "stalking-failstop"},
	}
	for _, tt := range tests {
		if got := tt.give.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}
