package failstop

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/adversary"
	"repro/internal/pram"
)

// packedGridAlgs is the algorithm grid of the representation contract:
// every Write-All algorithm is an ArrayDoneHinter, so each one exercises
// the packed prefix — X-in-place through the promotion path (it writes
// tree values into the array cells).
func packedGridAlgs(base, snapshot Config) []struct {
	name string
	cfg  Config
	mk   func() Algorithm
} {
	return []struct {
		name string
		cfg  Config
		mk   func() Algorithm
	}{
		{"X", base, NewX},
		{"X-in-place", base, NewXInPlace},
		{"V", base, NewV},
		{"combined", base, NewCombined},
		{"W", base, NewW},
		{"oblivious", snapshot, NewOblivious},
		{"ACC", base, func() Algorithm { return NewACC(11) }},
		{"trivial", base, NewTrivial},
		{"sequential", base, NewSequential},
		{"replicated", base, NewReplicated},
	}
}

// TestPackedEquivalence is the representation contract of Config.Packed:
// for every Write-All algorithm x adversary pairing, a packed run is
// bit-identical to an unpacked run — same metrics, final memory, event
// trace, and error. The bit-packed prefix is a layout choice, never an
// observable one.
func TestPackedEquivalence(t *testing.T) {
	const n, p = 64, 16
	base := Config{N: n, P: p, MaxTicks: 4000}
	snapshot := base
	snapshot.AllowSnapshot = true

	advs := []struct {
		name string
		mk   func() Adversary
	}{
		{"none", NoFailures},
		{"random", func() Adversary { return RandomFailures(0.2, 0.6, 7) }},
		{"random-budgeted", func() Adversary { return BudgetedRandomFailures(0.3, 0.7, 13, 64) }},
		{"thrashing", func() Adversary { return ThrashingAdversary(false) }},
		{"rotating", func() Adversary { return ThrashingAdversary(true) }},
		{"halving", HalvingAdversary},
	}

	for _, alg := range packedGridAlgs(base, snapshot) {
		for _, adv := range advs {
			t.Run(alg.name+"/"+adv.name, func(t *testing.T) {
				unpacked := runUnderKernel(t, alg.mk, adv.mk, alg.cfg, SerialKernel, 0)
				pcfg := alg.cfg
				pcfg.Packed = true
				packed := runUnderKernel(t, alg.mk, adv.mk, pcfg, SerialKernel, 0)
				assertRunsEqual(t, "packed", unpacked, packed)
				packedPar := runUnderKernel(t, alg.mk, adv.mk, pcfg, ParallelKernel, 3)
				assertRunsEqual(t, "packed/workers=3", unpacked, packedPar)
			})
		}
	}

	// The tree-walking adversaries read algorithm X's progress-tree
	// layout out of shared memory, so they only pair with X.
	treeAdvs := []struct {
		name string
		mk   func() Adversary
	}{
		{"postorder", func() Adversary { return PostOrderAdversary(n, p) }},
		{"stalking", func() Adversary { return StalkingAdversary(n, p, true) }},
		{"stalking-failstop", func() Adversary { return StalkingAdversary(n, p, false) }},
	}
	for _, adv := range treeAdvs {
		t.Run("X/"+adv.name, func(t *testing.T) {
			unpacked := runUnderKernel(t, NewX, adv.mk, base, SerialKernel, 0)
			pcfg := base
			pcfg.Packed = true
			packed := runUnderKernel(t, NewX, adv.mk, pcfg, SerialKernel, 0)
			assertRunsEqual(t, "packed", unpacked, packed)
		})
	}
}

// runBatched drives a machine through TickBatch in chunks of the given
// size and returns its outcome (no trace: sinks disable batching unless
// they opt in, and the per-tick trace contract is covered elsewhere).
func runBatched(t *testing.T, mkAlg func() Algorithm, mkAdv func() Adversary, cfg Config, chunk int) kernelRun {
	t.Helper()
	m, err := pram.New(cfg, mkAlg(), mkAdv())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer m.Close()
	var out kernelRun
	for {
		_, done, err := m.TickBatch(chunk)
		if err != nil {
			out.err = err.Error()
			break
		}
		if done {
			break
		}
	}
	out.metrics = m.Metrics()
	out.mem = m.Memory().CopyInto(nil)
	return out
}

// assertOutcomesEqual compares the trace-free observables of two runs.
func assertOutcomesEqual(t *testing.T, label string, want, got kernelRun) {
	t.Helper()
	if want.err != got.err {
		t.Fatalf("%s: err = %q, want %q", label, got.err, want.err)
	}
	if want.metrics != got.metrics {
		t.Errorf("%s: metrics diverge:\nper-tick %+v\nbatched  %+v", label, want.metrics, got.metrics)
	}
	if len(want.mem) != len(got.mem) {
		t.Fatalf("%s: memory sizes diverge: %d vs %d", label, len(want.mem), len(got.mem))
	}
	for i := range want.mem {
		if want.mem[i] != got.mem[i] {
			t.Fatalf("%s: final memory diverges at cell %d: %d vs %d", label, i, want.mem[i], got.mem[i])
		}
	}
}

// TestTickBatchEquivalence is the determinism contract of the batched
// tick kernel: runs driven by TickBatch — with quiet windows actually
// committing multiple ticks per bookkeeping round — finish with the same
// metrics, tick count, and memory as per-tick stepping, across batchable
// algorithms, adversaries with and without scheduled failures, chunk
// sizes, and both memory representations.
func TestTickBatchEquivalence(t *testing.T) {
	const n, p = 256, 16
	base := Config{N: n, P: p, MaxTicks: 4000}

	// A scheduled pattern with quiescent gaps on both sides: the batch
	// kernel must stop windows short of tick 5 and 9, fall back to
	// per-tick stepping through the events, then re-open windows.
	pattern := []adversary.Event{
		{Tick: 5, PID: 1, Kind: adversary.Fail, Point: pram.FailBeforeReads},
		{Tick: 5, PID: 2, Kind: adversary.Fail, Point: pram.FailAfterWrite1},
		{Tick: 9, PID: 1, Kind: adversary.Restart},
		{Tick: 9, PID: 2, Kind: adversary.Restart},
		{Tick: 11, PID: 0, Kind: adversary.Fail, Point: pram.FailAfterReads},
		{Tick: 14, PID: 0, Kind: adversary.Restart},
	}

	algs := []struct {
		name string
		mk   func() Algorithm
	}{
		{"trivial", NewTrivial},
		{"sequential", NewSequential},
	}
	advs := []struct {
		name string
		mk   func() Adversary
	}{
		{"none", NoFailures},
		{"scheduled", func() Adversary { return adversary.NewScheduled(pattern) }},
		// Budget-exhausted random: quiescent only after the budget is
		// spent, so early ticks step and the tail batches.
		{"random-budgeted", func() Adversary { return BudgetedRandomFailures(0.3, 0.7, 13, 16) }},
	}

	for _, alg := range algs {
		for _, adv := range advs {
			for _, packed := range []bool{false, true} {
				for _, chunk := range []int{5, 64, 4096} {
					name := fmt.Sprintf("%s/%s/packed=%v/chunk=%d", alg.name, adv.name, packed, chunk)
					t.Run(name, func(t *testing.T) {
						cfg := base
						cfg.Packed = packed
						perTick := runUnderKernel(t, alg.mk, adv.mk, cfg, SerialKernel, 0)
						batched := runBatched(t, alg.mk, adv.mk, cfg, chunk)
						assertOutcomesEqual(t, "batched", perTick, batched)
					})
				}
			}
		}
	}
}

// TestTickBatchFallsBackForNonBatchAlgorithms pins the graceful path:
// an algorithm without CycleBatch support still runs correctly through
// TickBatch, one tick at a time.
func TestTickBatchFallsBackForNonBatchAlgorithms(t *testing.T) {
	cfg := Config{N: 64, P: 16, MaxTicks: 4000}
	perTick := runUnderKernel(t, NewX, NoFailures, cfg, SerialKernel, 0)
	batched := runBatched(t, NewX, NoFailures, cfg, 64)
	assertOutcomesEqual(t, "fallback", perTick, batched)
}

// packedResume runs the midpoint-snapshot-resume protocol across memory
// representations: the snapshot is taken on a machine with srcPacked and
// restored into a fresh machine with dstPacked, round-tripping through
// the binary format. The resumed run must reproduce the unpacked
// baseline's metrics, memory, error, and trace suffix regardless of the
// representations on either side.
func packedResume(t *testing.T, mkAlg func() Algorithm, mkAdv func() Adversary, base Config, srcPacked, dstPacked bool) (want, resumed kernelRun) {
	t.Helper()

	baseline := runUnderKernel(t, mkAlg, mkAdv, base, SerialKernel, 0)
	splitTick := baseline.metrics.Ticks / 2

	srcCfg := base
	srcCfg.Packed = srcPacked
	half, err := pram.New(srcCfg, mkAlg(), mkAdv())
	if err != nil {
		t.Fatalf("New (half run): %v", err)
	}
	defer half.Close()
	for half.Tick() < splitTick {
		done, err := half.Step()
		if err != nil {
			t.Fatalf("Step at tick %d: %v", half.Tick(), err)
		}
		if done {
			t.Fatalf("run completed at tick %d, before split tick %d", half.Tick(), splitTick)
		}
	}
	snap, err := half.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot at tick %d: %v", splitTick, err)
	}

	var buf bytes.Buffer
	if err := pram.WriteSnapshot(&buf, snap); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	loaded, err := pram.ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}

	dstCfg := base
	dstCfg.Packed = dstPacked
	dstCfg.Sink = &resumed.trace
	m, err := pram.New(dstCfg, mkAlg(), mkAdv())
	if err != nil {
		t.Fatalf("New (resumed run): %v", err)
	}
	defer m.Close()
	if err := m.RestoreSnapshot(loaded); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	resumed.metrics, err = m.Run()
	if err != nil {
		resumed.err = err.Error()
	}
	resumed.mem = m.Memory().CopyInto(nil)

	want = kernelRun{metrics: baseline.metrics, mem: baseline.mem, err: baseline.err}
	want.trace.runs = baseline.trace.runs
	for _, ev := range baseline.trace.cycles {
		if ev.Tick >= splitTick {
			want.trace.cycles = append(want.trace.cycles, ev)
		}
	}
	for _, ev := range baseline.trace.ticks {
		if ev.Tick >= splitTick {
			want.trace.ticks = append(want.trace.ticks, ev)
		}
	}
	return want, resumed
}

// TestPackedResumeEquivalence extends the checkpoint determinism
// contract to the packed representation, including cross-representation
// restores in both directions: snapshots carry logical cell contents, so
// a packed checkpoint resumes on an unpacked machine and vice versa.
func TestPackedResumeEquivalence(t *testing.T) {
	base := Config{N: 64, P: 16, MaxTicks: 4000}

	algs := []struct {
		name string
		mk   func() Algorithm
	}{
		{"X", NewX},
		{"X-in-place", NewXInPlace}, // may promote mid-run: snapshot can be packed or not
		{"trivial", NewTrivial},
		{"sequential", NewSequential},
	}
	advs := []struct {
		name string
		mk   func() Adversary
	}{
		{"none", NoFailures},
		{"random", func() Adversary { return RandomFailures(0.2, 0.6, 7) }},
	}
	dirs := []struct {
		name     string
		src, dst bool
	}{
		{"packed-to-packed", true, true},
		{"packed-to-unpacked", true, false},
		{"unpacked-to-packed", false, true},
	}

	for _, alg := range algs {
		for _, adv := range advs {
			for _, d := range dirs {
				t.Run(alg.name+"/"+adv.name+"/"+d.name, func(t *testing.T) {
					want, resumed := packedResume(t, alg.mk, adv.mk, base, d.src, d.dst)
					assertRunsEqual(t, d.name, want, resumed)
				})
			}
		}
	}
}

// TestPackedSnapshotCapturesRepresentation pins the size contract that
// motivates snapshot format v2: a packed machine's snapshot stores the
// prefix as bits, not one word per cell.
func TestPackedSnapshotCapturesRepresentation(t *testing.T) {
	cfg := Config{N: 1024, P: 4, MaxTicks: 4000, Packed: true}
	m, err := pram.New(cfg, NewTrivial(), NoFailures())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer m.Close()
	for i := 0; i < 8; i++ {
		if done, err := m.Step(); done || err != nil {
			t.Fatalf("Step %d: done=%v err=%v", i, done, err)
		}
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if snap.PackedLen != cfg.N || len(snap.PackedBits) != (cfg.N+63)/64 {
		t.Fatalf("snapshot prefix = %d cells in %d bit words, want %d in %d",
			snap.PackedLen, len(snap.PackedBits), cfg.N, (cfg.N+63)/64)
	}
	if len(snap.Mem) != 0 {
		t.Fatalf("snapshot tail has %d words; trivial's memory is all prefix", len(snap.Mem))
	}
	if snap.MemSize() != cfg.N {
		t.Fatalf("MemSize = %d, want %d", snap.MemSize(), cfg.N)
	}
}
